// Command iltrun executes one ILT flow on one synthetic clip and
// reports the paper's metrics plus the engine's per-stage wall-time
// timeline, optionally dumping mask/wafer/target images and a
// Fig. 8-style stitch-error overlay.
//
// With -checkpoint-file the run persists every completed stage's
// snapshot to disk (atomic rename), and -resume-file restarts a killed
// run from its last completed stage — the CLI equivalent of the job
// service's POST /v1/jobs/{id}/resume:
//
//	iltrun -method ours -checkpoint-file run.ckpt   # killed mid-flow
//	iltrun -method ours -resume-file run.ckpt       # resumes, bit-identical
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mgsilt/internal/cache"
	"mgsilt/internal/core"
	"mgsilt/internal/device"
	"mgsilt/internal/fault"
	"mgsilt/internal/grid"
	"mgsilt/internal/imgio"
	"mgsilt/internal/kernels"
	"mgsilt/internal/layout"
	"mgsilt/internal/litho"
	"mgsilt/internal/metrics"
	"mgsilt/internal/mrc"
	"mgsilt/internal/opt"
	"mgsilt/internal/parallel"
	"mgsilt/internal/pipeline"
	"mgsilt/internal/sched"
	"mgsilt/internal/shard"
)

// methodFlows orders the flow names for help text; methodDefaults
// pairs each flow with its historical solver backend, overridable with
// -solver. Both solver vocabularies — the override and the defaults —
// are opt registry names, so worker processes resolve the identical
// instance.
var methodFlows = []string{"ours", "dc-multilevel", "dc-gls", "fullchip", "heal"}

var methodDefaults = map[string]string{
	"ours":          opt.DefaultSolver,
	"dc-multilevel": "multilevel",
	"dc-gls":        "levelset",
	"fullchip":      "multilevel",
	"heal":          "multilevel",
}

func main() {
	var (
		method    = flag.String("method", "ours", "flow: "+strings.Join(methodFlows, " | "))
		solverSel = flag.String("solver", "", "solver backend: "+strings.Join(opt.Names(), " | ")+" (empty = the method's default)")
		listSolve = flag.Bool("list-solvers", false, "print the registered solver names, one per line, and exit")
		mrcCheck  = flag.Bool("mrc", false, "check the final binarised mask against mrc.DefaultRules and print the verdict")
		n         = flag.Int("n", 128, "native simulator grid size (power of two)")
		seed      = flag.Int64("seed", 1, "clip generator seed")
		rects     = flag.String("rects", "", "optional .rects geometry file to optimise instead of a generated clip")
		iters     = flag.Int("iters", 100, "baseline iteration budget")
		devices   = flag.Int("devices", 1, "simulated devices")
		workers   = flag.Int("workers", 0, "compute pool width for FFT/convolution fan-out (0 = ILT_WORKERS env or GOMAXPROCS)")
		outDir    = flag.String("out", "", "directory for PNG dumps (optional)")
		faultRate = flag.Float64("fault-rate", 0, "chaos: per-attempt transient fault probability at the device.run site (0 disables)")
		faultHard = flag.Float64("fault-hard", 0, "chaos: per-attempt hard device-failure probability (quarantines the device)")
		faultSeed = flag.Int64("fault-seed", 1, "chaos: deterministic fault-schedule seed")
		ckptFile  = flag.String("checkpoint-file", "", "persist each completed stage's checkpoint to this file (atomic replace), so a killed run can be resumed")
		resume    = flag.String("resume-file", "", "resume from a checkpoint file written by -checkpoint-file (flow and clip geometry must match)")
		times     = flag.Bool("stage-times", true, "print the engine's per-stage wall-time timeline")
		cacheMB   = flag.Int64("cache-mb", 0, "tile-result cache RAM budget in MiB (0 disables unless -cache-dir set)")
		cacheDir  = flag.String("cache-dir", "", "tile-cache disk spill directory (enables the cache; a warm dir short-circuits repeated runs)")
		batchSize = flag.Int("batch-size", 0, "tile batch scheduler flush threshold (<2 disables batching)")
		repeat    = flag.Bool("repeat-cells", false, "optimise a repeated standard-cell clip (layout.GenerateRepeat) instead of random routing — the workload the tile cache accelerates")
		shardURLs = flag.String("shard-workers", "", "comma-separated iltworker base URLs; tile solves shard across them (byte-identical to in-process at any count)")
		correct   = flag.Bool("coarse-correct", false, "two-level Schwarz: run a coarse-grid correction between fine stages (method ours only)")
		dropTol   = flag.Float64("drop-tol", 0, "per-tile convergence dropout tolerance (per-pixel RMS; 0 disables; method ours only)")
		dropWin   = flag.Int("drop-window", 0, "consecutive stages drop-tol must hold before a tile retires (0 = default)")
		fineStg   = flag.Int("fine-stages", 0, "fine Schwarz stage count (0 = default; method ours only)")
		fidelity  = flag.String("fidelity", "", "comma-separated per-fine-stage kernel energy budgets, e.g. 0.9,1 (empty = full fidelity; one entry per fine stage, last must be 1)")
		maskRaw   = flag.String("mask-raw", "", "write the final mask to this file in the versioned checkpoint format, for byte-level comparison (cmp) across runs")
	)
	flag.Parse()
	if *listSolve {
		for _, name := range opt.Names() {
			fmt.Println(name)
		}
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	kc := kernels.DefaultConfig(*n)
	nom, err := kernels.Generate(kc)
	if err != nil {
		fatal(err)
	}
	def, err := kernels.Defocused(kc, 0.8)
	if err != nil {
		fatal(err)
	}
	sim, err := litho.New(nom, def, litho.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	clipSize := 2 * *n
	var clip *layout.Clip
	if *rects != "" {
		f, err := os.Open(*rects)
		if err != nil {
			fatal(err)
		}
		clip, err = layout.ReadRects(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if clip.Target.H != clipSize {
			fatal(fmt.Errorf("rects clip is %d px, need %d (= 2N)", clip.Target.H, clipSize))
		}
	} else if *repeat {
		var err error
		clip, err = layout.GenerateRepeat(layout.RepeatConfig{Size: clipSize, Seed: *seed})
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		clip, err = layout.Generate(layout.DefaultConfig(clipSize, *seed))
		if err != nil {
			fatal(err)
		}
	}

	cfg := core.DefaultConfig(sim, clipSize, *iters)
	cfg.Cluster, err = device.NewCluster(*devices, 0)
	if err != nil {
		fatal(err)
	}
	if *faultRate < 0 || *faultHard < 0 || *faultRate+*faultHard > 1 {
		fatal(fmt.Errorf("fault rates %g/%g invalid (each >= 0, sum <= 1)", *faultRate, *faultHard))
	}
	if *cacheMB > 0 || *cacheDir != "" {
		tc, err := cache.New(cache.Options{MaxBytes: *cacheMB << 20, Dir: *cacheDir})
		if err != nil {
			fatal(err)
		}
		cfg.TileCache = tc
	}
	if *batchSize >= 2 {
		cfg.Batch = sched.New(sched.Options{BatchSize: *batchSize})
	}
	// Solver selection: the -solver registry name wins, else the
	// method's historical default. Resolving through opt.New here and
	// shipping the same name to shard workers keeps distributed runs
	// byte-identical to in-process ones.
	solverName, ok := methodDefaults[*method]
	if !ok {
		fmt.Fprintf(os.Stderr, "iltrun: unknown method %q (flows: %s)\n", *method, strings.Join(methodFlows, " | "))
		os.Exit(2)
	}
	if *solverSel != "" {
		solverName = *solverSel
	}
	solver, err := opt.New(solverName, sim)
	if err != nil {
		fatal(err) // the registry error lists the registered names
	}
	if *method == "fullchip" && *solverSel == "" {
		// The full-chip reference historically runs a deeper pyramid
		// than the stock multilevel default.
		solver.(*opt.MultiLevel).Levels = 3
	}
	cfg.Solver = solver
	cfg.SolverName = solverName

	// Remote tile sharding: the flow's tile fan-out goes through a
	// shard coordinator instead of the local cluster. The worker-side
	// solver name must match this process's choice, or the distributed
	// result would diverge from the in-process one.
	var coord *shard.Coordinator
	if *shardURLs != "" {
		coord, err = shard.NewCoordinator(shard.Config{
			Workers: strings.Split(*shardURLs, ","),
			N:       *n,
			Solver:  solverName,
			RunID:   fmt.Sprintf("iltrun-%d", os.Getpid()),
		})
		if err != nil {
			fatal(err)
		}
		cfg.Tiles = coord
	}
	cfg.CoarseCorrect = *correct
	cfg.DropTol = *dropTol
	cfg.DropWindow = *dropWin
	if *fineStg > 0 {
		cfg.FineStages = *fineStg
	}
	if *fidelity != "" {
		cfg.FidelitySchedule, err = parseSchedule(*fidelity)
		if err != nil {
			fatal(err)
		}
	}
	chaos := *faultRate > 0 || *faultHard > 0
	if chaos {
		cfg.Cluster.Injector = fault.NewSeeded(*faultSeed).
			Site(fault.SiteDeviceRun, fault.Rates{Transient: *faultRate, Hard: *faultHard})
		cfg.Cluster.Retry = &fault.Retry{}
	}

	// Checkpoint/resume persistence: every completed stage's snapshot
	// is atomically replaced on disk, so a SIGKILL between stages costs
	// at most the interrupted stage on the next -resume-file run.
	if *resume != "" {
		ck, err := readCheckpointFile(*resume)
		if err != nil {
			fatal(err)
		}
		cfg.Resume = ck
		fmt.Fprintf(os.Stderr, "iltrun: resuming %s after stage %d/%d\n", ck.Flow, ck.Stage, ck.Total)
	}
	if *ckptFile != "" {
		path := *ckptFile
		cfg.Checkpoint = func(ck core.Checkpoint) {
			if err := writeCheckpointFile(path, &ck); err != nil {
				// A failed snapshot must not kill the optimisation; the
				// run simply loses resumability from this stage.
				fmt.Fprintln(os.Stderr, "iltrun: checkpoint:", err)
			}
		}
	}

	// Flow dispatch only — the solver was resolved above, so this
	// switch never names a solver.
	var res *core.Result
	switch *method {
	case "ours":
		res, err = core.MultigridSchwarz(cfg, clip.Target)
	case "dc-multilevel", "dc-gls":
		res, err = core.DivideAndConquer(cfg, clip.Target)
	case "fullchip":
		res, err = core.FullChip(cfg, clip.Target)
	case "heal":
		res, err = core.StitchAndHeal(cfg, clip.Target)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("method       : %s\n", res.Method)
	fmt.Printf("solver       : %s\n", solverName)
	fmt.Printf("clip         : %s (seed %d, %dx%d, area %d px)\n", clip.ID, clip.Seed, clipSize, clipSize, clip.AreaPx())
	fmt.Printf("L2           : %.0f\n", res.L2)
	fmt.Printf("PVBand       : %.0f\n", res.PVBand)
	fmt.Printf("stitch loss  : %.1f over %d crossings (max %.1f)\n", res.StitchLoss, len(res.Errors), metrics.MaxLoss(res.Errors))
	fmt.Printf("errors > %.0f : %d\n", cfg.StitchThreshold, metrics.CountAbove(res.Errors, cfg.StitchThreshold))
	fmt.Printf("TAT          : %v (devices: %d, device busy: %v)\n", res.TAT.Round(1e6), *devices, res.Stats.TotalBusy.Round(1e6))
	if *mrcCheck {
		rep, err := mrc.Check(res.Mask.Binarize(0.5), mrc.DefaultRules())
		if err != nil {
			fatal(err)
		}
		if rep.Clean() {
			fmt.Printf("mrc          : clean\n")
		} else {
			fmt.Printf("mrc          : %d violations\n", rep.Total())
		}
	}
	if chaos {
		fmt.Printf("chaos        : %d retries, %d device(s) quarantined (reproduce with -fault-seed %d -fault-rate %g -fault-hard %g)\n",
			res.Stats.Retries, res.Stats.Quarantined, *faultSeed, *faultRate, *faultHard)
	}
	if *correct || *dropTol > 0 {
		fmt.Printf("two-level    : %d coarse corrections; dropout: %d tiles converged, %d solves skipped (tol %g)\n",
			res.CoarseCorrections, res.TilesConverged, res.TileSolvesSkipped, *dropTol)
	}
	if cfg.TileCache != nil {
		cs := cfg.TileCache.Stats()
		fmt.Printf("cache        : %.1f%% hit rate (%d ram + %d disk hits, %d misses, %d merged; %d entries, %.1f MiB)\n",
			100*cs.HitRate(), cs.Hits, cs.DiskHits, cs.Misses, cs.Merged, cs.Entries, float64(cs.Bytes)/(1<<20))
	}
	if cfg.Batch != nil {
		bs := cfg.Batch.Stats()
		fmt.Printf("batch        : %d solves in %d flushes (%d shared a batch, largest %d)\n",
			bs.Requests, bs.Batches, bs.Batched, bs.MaxBatch)
	}
	if coord != nil {
		ss := coord.Stats()
		fmt.Printf("shard        : %d tiles over %d/%d workers in %d rounds (%d reassigned, %d quarantined, %d retries)\n",
			ss.Tiles, coord.LiveWorkers(), len(strings.Split(*shardURLs, ",")), ss.Rounds,
			ss.ReassignedTiles, ss.WorkersQuarantined, ss.RequestRetries)
		fmt.Printf("shard bytes  : %.2f MiB halo + %.2f MiB full\n",
			float64(ss.HaloBytes)/(1<<20), float64(ss.FullBytes)/(1<<20))
	}
	if *times && len(res.Timeline) > 0 {
		fmt.Printf("stages       : %d executed\n", len(res.Timeline))
		for _, st := range res.Timeline {
			fmt.Printf("  %-8s %2d/%-2d %9.1f ms\n", st.Name, st.Iter, st.Total, float64(st.Wall.Microseconds())/1e3)
		}
	}

	// The raw dump reuses the versioned checkpoint encoding, so two
	// bit-identical runs produce byte-identical files — what the CI
	// shard-equivalence job compares with cmp.
	if *maskRaw != "" {
		ck := &core.Checkpoint{Flow: res.Method, Stage: 1, Total: 1, Mask: res.Mask}
		if err := writeCheckpointFile(*maskRaw, ck); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *maskRaw)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		binary := res.Mask.Binarize(0.5)
		dumps := []struct {
			name string
			m    *grid.Mat
		}{
			{"target.png", clip.Target},
			{"mask.png", binary},
			{"wafer.png", sim.Wafer(binary, sim.Nominal())},
			{"overlay.png", imgio.Overlay(binary, res.Errors, cfg.StitchThreshold, cfg.Stitch.Window/2)},
		}
		for _, d := range dumps {
			path := filepath.Join(*outDir, d.name)
			if err := imgio.SavePNG(path, d.m); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// writeCheckpointFile atomically replaces path with the serialised
// checkpoint (versioned header + mask payload): a kill mid-write
// leaves the previous snapshot intact.
func writeCheckpointFile(path string, ck *core.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pipeline.WriteCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func readCheckpointFile(path string) (*core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pipeline.ReadCheckpoint(f)
}

// parseSchedule parses a -fidelity flag value: comma-separated
// per-fine-stage kernel energy budgets. Range and length validation is
// core.Config.Validate's job; this only requires well-formed floats.
func parseSchedule(s string) ([]float64, error) {
	var sched []float64
	for _, tok := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("fidelity schedule %q: %w", s, err)
		}
		sched = append(sched, f)
	}
	return sched, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iltrun:", err)
	os.Exit(1)
}
