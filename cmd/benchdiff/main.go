// Command benchdiff is the benchmark-regression gate: it compares a
// fresh `cmd/iltbench -json` document against a committed baseline and
// exits non-zero when performance or quality regressed.
//
//	go run ./cmd/iltbench -scale small -json BENCH_fresh.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_fresh.json
//
// Gate rules (see internal/benchfmt.Compare):
//
//   - Quality (L2 / PVBand / Stitch): any growth beyond a tiny epsilon
//     fails — the experiments are deterministic, so growth means the
//     code got worse, not the run noisier.
//   - TAT: growth beyond -tat-threshold (default 10%) fails. TATs are
//     normalised by each document's host-calibration measurement
//     (calib_ns) so a committed baseline remains meaningful on a
//     differently-sized CI runner; -abs-tat compares raw seconds
//     instead.
//   - Provenance (scale, optics, worker count) must match exactly, or
//     benchdiff refuses the comparison (exit 2) rather than produce a
//     meaningless verdict.
//
// Exit codes: 0 pass, 1 regression detected, 2 usage / incomparable
// documents.
package main

import (
	"flag"
	"fmt"
	"os"

	"mgsilt/internal/benchfmt"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline document")
		currentPath  = flag.String("current", "", "fresh iltbench -json document (required)")
		tatThreshold = flag.Float64("tat-threshold", 0.10, "tolerated relative TAT growth")
		qualityEps   = flag.Float64("quality-eps", 1e-9, "tolerated relative quality-metric growth")
		absTAT       = flag.Bool("abs-tat", false, "compare raw TAT seconds instead of calibration-normalised")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := benchfmt.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := benchfmt.ReadFile(*currentPath)
	if err != nil {
		fatal(err)
	}

	res, err := benchfmt.Compare(base, cur, benchfmt.CompareOptions{
		TATThreshold: *tatThreshold,
		QualityEps:   *qualityEps,
		AbsoluteTAT:  *absTAT,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchdiff: baseline %s (git %s, calib %dns) vs current %s (git %s, calib %dns)\n",
		base.GeneratedAt, orUnknown(base.GitDescribe), base.CalibNS,
		cur.GeneratedAt, orUnknown(cur.GitDescribe), cur.CalibNS)
	fmt.Printf("benchdiff: %d comparisons, %d regressions\n", res.Checked, len(res.Regressions))
	if res.Checked == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping per-method experiments — vacuous pass refused")
		os.Exit(2)
	}
	if !res.OK() {
		for _, f := range res.Regressions {
			fmt.Printf("REGRESSION %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
