// Command lithosim runs the stand-alone lithography simulation: given
// a mask image (PNG, grayscale; values above 0.5 are mask material) or
// a generated clip, it prints the wafer image and process-window
// metrics, mirroring how the ICCAD-2013 contest tool is used as a
// stand-alone checker.
package main

import (
	"flag"
	"fmt"
	"image/png"
	"os"
	"path/filepath"

	"mgsilt/internal/fft"
	"mgsilt/internal/grid"
	"mgsilt/internal/imgio"
	"mgsilt/internal/kernels"
	"mgsilt/internal/layout"
	"mgsilt/internal/litho"
	"mgsilt/internal/metrics"
)

func main() {
	var (
		n        = flag.Int("n", 128, "native simulator grid size (power of two)")
		maskPath = flag.String("mask", "", "PNG mask to simulate (default: generated clip target)")
		seed     = flag.Int64("seed", 1, "clip seed when no mask is given")
		outDir   = flag.String("out", "", "directory for aerial/wafer PNG dumps (optional)")
	)
	flag.Parse()

	kc := kernels.DefaultConfig(*n)
	nom, err := kernels.Generate(kc)
	if err != nil {
		fatal(err)
	}
	def, err := kernels.Defocused(kc, 0.8)
	if err != nil {
		fatal(err)
	}
	sim, err := litho.New(nom, def, litho.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	var mask *grid.Mat
	if *maskPath != "" {
		mask, err = loadPNG(*maskPath)
		if err != nil {
			fatal(err)
		}
		if mask.H != mask.W || mask.H%*n != 0 || !fft.IsPow2(mask.H / *n) {
			fatal(fmt.Errorf("mask %dx%d is not a square power-of-two multiple of N=%d", mask.H, mask.W, *n))
		}
	} else {
		clip, err := layout.Generate(layout.DefaultConfig(2**n, *seed))
		if err != nil {
			fatal(err)
		}
		mask = clip.Target
	}

	aerial := sim.Aerial(mask, sim.Nominal())
	nomWafer := sim.PrintResist(aerial, 1)
	inner := sim.Wafer(mask, sim.Inner())
	outer := sim.Wafer(mask, sim.Outer())

	fmt.Printf("mask          : %dx%d, %d mask pixels\n", mask.H, mask.W, mask.CountAbove(0.5))
	fmt.Printf("aerial max    : %.3f (threshold %.3f)\n", aerial.MaxAbs(), sim.Config().Threshold)
	fmt.Printf("printed area  : %.0f px (nominal)\n", nomWafer.Sum())
	fmt.Printf("PVBand        : %.0f px\n", inner.L2Diff(outer))
	fmt.Printf("self L2       : %.0f px (wafer vs binarised mask as target)\n",
		metrics.L2(sim, mask, mask.Binarize(0.5)))

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		norm := aerial.Clone().Scale(1 / maxOf(aerial.MaxAbs(), 1e-9))
		dumps := []struct {
			name string
			m    *grid.Mat
		}{
			{"aerial.png", norm},
			{"wafer.png", nomWafer},
			{"wafer_inner.png", inner},
			{"wafer_outer.png", outer},
		}
		for _, d := range dumps {
			path := filepath.Join(*outDir, d.name)
			if err := imgio.SavePNG(path, d.m); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func maxOf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func loadPNG(path string) (*grid.Mat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	b := img.Bounds()
	m := grid.NewMat(b.Dy(), b.Dx())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			gray := (float64(r) + float64(g) + float64(bl)) / 3 / 65535
			m.Set(y, x, gray)
		}
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lithosim:", err)
	os.Exit(1)
}
