// Command iltserver runs the ILT job service: a long-lived HTTP
// server that accepts ILT jobs (flow + clip + config knobs), queues
// them onto a bounded worker pool of simulated accelerator clusters,
// and exposes progress, results, cancellation and Prometheus metrics.
// Every flow runs on the stage-pipeline engine, so every job reports
// an engine-measured stage_timeline in its status JSON, checkpoints
// after each completed stage, and can be resumed bit-identically via
// POST /v1/jobs/{id}/resume after a failure or cancellation.
//
// Quickstart (see README.md for the full curl walkthrough):
//
//	go run ./cmd/iltserver -addr :8080 -workers 2 -devices 4
//	curl -s -X POST localhost:8080/v1/jobs -d '{"flow":"mgs","n":64,"iters":20}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s localhost:8080/v1/jobs/j000001/mask.pgm -o mask.pgm
//	curl -s -X DELETE localhost:8080/v1/jobs/j000001
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, new
// submits are refused, and in-flight jobs drain until -drain expires,
// after which they are cancelled mid-iteration.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mgsilt/internal/opt"
	"mgsilt/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 2, "concurrent jobs (worker pool size)")
		devices   = flag.Int("devices", 1, "simulated devices per worker cluster")
		queue     = flag.Int("queue", 64, "job queue capacity")
		timeout   = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		maxN      = flag.Int("max-n", 256, "largest accepted simulator grid")
		compute   = flag.Int("compute-workers", 0, "process-wide compute pool width for FFT/convolution fan-out (0 = ILT_WORKERS env or GOMAXPROCS)")
		faultRate = flag.Float64("fault-rate", 0, "chaos: per-attempt transient fault probability at the device.run site (0 disables)")
		faultSeed = flag.Int64("fault-seed", 1, "chaos: deterministic fault-schedule seed (used with -fault-rate)")
		cacheMB   = flag.Int64("cache-mb", 0, "shared tile-result cache RAM budget in MiB (0 disables unless -cache-dir set)")
		cacheDir  = flag.String("cache-dir", "", "tile-cache disk spill directory (enables the cache; survives restarts)")
		batchSize = flag.Int("batch-size", 0, "cross-job batch scheduler flush threshold (<2 disables batching)")
		batchWait = flag.Duration("batch-wait", 0, "max time a tile waits for batch peers (0 = scheduler default)")
		stateDir  = flag.String("state-dir", "", "durable job-queue journal directory; pending jobs resume after a restart")
		shardURLs = flag.String("shard-workers", "", "comma-separated iltworker base URLs; every job's tile solves shard across them (byte-identical to in-process)")
		solverSel = flag.String("solver", "", "default solver backend for jobs that do not set solver: "+strings.Join(opt.Names(), " | "))
		correct   = flag.Bool("coarse-correct", false, "default two-level Schwarz coarse correction for jobs that do not override coarse_correct")
		dropTol   = flag.Float64("drop-tol", 0, "default per-tile convergence dropout tolerance for jobs that do not override drop_tol (0 disables)")
		fidelity  = flag.String("fidelity", "", "default per-fine-stage kernel energy budgets for jobs that do not override fidelity_schedule, e.g. 0.9,1 (empty = full fidelity)")
	)
	flag.Parse()

	if *solverSel != "" && !opt.Known(*solverSel) {
		fatal(fmt.Errorf("%w %q (registered: %v)", opt.ErrUnknownSolver, *solverSel, opt.Names()))
	}
	var shardWorkers []string
	if *shardURLs != "" {
		shardWorkers = strings.Split(*shardURLs, ",")
	}
	var fidSched []float64
	if *fidelity != "" {
		for _, tok := range strings.Split(*fidelity, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatal(fmt.Errorf("fidelity schedule %q: %w", *fidelity, err))
			}
			fidSched = append(fidSched, f)
		}
	}

	srv, err := service.New(service.Options{
		Workers:          *workers,
		DevicesPerWorker: *devices,
		QueueCap:         *queue,
		DefaultTimeout:   *timeout,
		MaxN:             *maxN,
		ComputeWorkers:   *compute,
		FaultRate:        *faultRate,
		FaultSeed:        *faultSeed,
		CacheBytes:       *cacheMB << 20,
		CacheDir:         *cacheDir,
		BatchSize:        *batchSize,
		BatchWait:        *batchWait,
		StateDir:         *stateDir,
		ShardWorkers:     shardWorkers,
		DefaultSolver:    *solverSel,
		CoarseCorrect:    *correct,
		DropTol:          *dropTol,
		FidelitySchedule: fidSched,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "iltserver: listening on %s (%d workers x %d devices)\n", *addr, *workers, *devices)
		if *faultRate > 0 {
			fmt.Fprintf(os.Stderr, "iltserver: chaos injection enabled (rate %g, seed %d) — reproduce with -fault-rate %g -fault-seed %d\n",
				*faultRate, *faultSeed, *faultRate, *faultSeed)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "iltserver: shutting down, draining jobs...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "iltserver: http shutdown:", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "iltserver: drain budget exceeded, jobs cancelled:", err)
	}
	fmt.Fprintln(os.Stderr, "iltserver: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iltserver:", err)
	os.Exit(1)
}
