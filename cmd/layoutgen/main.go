// Command layoutgen emits the synthetic M1 benchmark clips as PNG
// images plus a summary of their geometry, so the evaluation data the
// experiments run on can be inspected and archived.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mgsilt/internal/imgio"
	"mgsilt/internal/layout"
)

func main() {
	var (
		count   = flag.Int("count", 20, "number of clips")
		size    = flag.Int("size", 256, "clip side length in pixels")
		seed    = flag.Int64("seed", 1000, "suite base seed")
		outDir  = flag.String("out", "clips", "output directory")
		repeat  = flag.Bool("repeat-cells", false, "generate repeated standard-cell clips instead of random routing")
		cell    = flag.Int("cell", 32, "repeat-cells: cell placement pitch in pixels")
		library = flag.Int("library", 3, "repeat-cells: distinct cells in the library")
	)
	flag.Parse()

	var clips []*layout.Clip
	var err error
	if *repeat {
		for i := 0; i < *count; i++ {
			c, err := layout.GenerateRepeat(layout.RepeatConfig{
				Size: *size, Seed: *seed + int64(i) + 1, Cell: *cell, Library: *library,
			})
			if err != nil {
				fatal(err)
			}
			clips = append(clips, c)
		}
	} else {
		clips, err = layout.Suite(*count, *size, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %-10s %-10s %s\n", "clip", "area(px)", "density", "rects")
	for _, c := range clips {
		path := filepath.Join(*outDir, c.ID+".png")
		if err := imgio.SavePNG(path, c.Target); err != nil {
			fatal(err)
		}
		rf, err := os.Create(filepath.Join(*outDir, c.ID+".rects"))
		if err != nil {
			fatal(err)
		}
		if err := layout.WriteRects(rf, c); err != nil {
			fatal(err)
		}
		if err := rf.Close(); err != nil {
			fatal(err)
		}
		density := float64(c.AreaPx()) / float64(*size**size)
		fmt.Printf("%-8s %-10d %-10.3f %d\n", c.ID, c.AreaPx(), density, len(c.Rects))
	}
	fmt.Printf("wrote %d clips to %s\n", len(clips), *outDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layoutgen:", err)
	os.Exit(1)
}
