// Package mgsilt's root benchmarks regenerate every table and figure
// of the paper's evaluation (Section 4) — see DESIGN.md for the
// experiment index. Each benchmark runs a complete experiment per
// iteration and logs the rendered table; scalar outcomes are also
// reported as benchmark metrics so runs can be diffed numerically.
//
// Scale is controlled with ILT_SCALE (small | default | full); the
// default keeps `go test -bench=.` CI-friendly, while
// `ILT_SCALE=full go test -bench BenchmarkTable1 -timeout 0` performs
// the paper-shaped 20-clip run.
package mgsilt

import (
	"strings"
	"testing"

	"mgsilt/internal/bench"
	"mgsilt/internal/report"
)

func newEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(bench.ScaleFromEnv())
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func logTable(b *testing.B, tab *report.Table) {
	b.Helper()
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
}

// BenchmarkTable1 regenerates Table 1: the four-method comparison
// (GLS-ILT, Multi-level-ILT, Full-chip, Ours) over the clip suite,
// with Average and Ratio rows. The paper-shape expectations are:
// Ours ≈ Full-chip on L2/PVB, D&C baselines worse on L2,
// Multi-level-ILT far worse on stitch loss, and D&C TATs above Ours.
func BenchmarkTable1(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable1(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		for m, name := range res.Methods {
			clean := strings.ToLower(strings.ReplaceAll(name, "-", ""))
			b.ReportMetric(res.Ratio[m].L2, clean+"-L2-ratio")
			b.ReportMetric(res.Ratio[m].Stitch, clean+"-stitch-ratio")
			b.ReportMetric(res.Ratio[m].TATSec, clean+"-TAT-ratio")
		}
	}
}

// BenchmarkFig6WeightedSmoothing regenerates Fig. 6: the weighted
// smoothing assembly (Eq. 14) against hard RAS assembly (Eq. 6) inside
// the multigrid-Schwarz flow. Weighted assembly should lower stitch
// loss without hurting L2.
func BenchmarkFig6WeightedSmoothing(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig6(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		var hard, smooth float64
		for j := range res.Cases {
			hard += res.HardStitch[j]
			smooth += res.SmoothStitch[j]
		}
		n := float64(len(res.Cases))
		b.ReportMetric(hard/n, "hard-stitch")
		b.ReportMetric(smooth/n, "weighted-stitch")
	}
}

// BenchmarkFig7StitchAndHeal regenerates Fig. 7: healing reduces
// stitch loss on the original boundaries but re-creates errors on the
// healing windows' own edges, unlike the multigrid-Schwarz flow.
func BenchmarkFig7StitchAndHeal(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig7(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		var dc, healedOrig, healedNew, ours float64
		for j := range res.Cases {
			dc += res.DCOriginal[j]
			healedOrig += res.HealedOriginal[j]
			healedNew += res.HealedNewEdges[j]
			ours += res.OursOriginal[j]
		}
		n := float64(len(res.Cases))
		b.ReportMetric(dc/n, "dc-stitch")
		b.ReportMetric(healedOrig/n, "healed-orig-stitch")
		b.ReportMetric(healedNew/n, "healed-newedge-stitch")
		b.ReportMetric(ours/n, "ours-stitch")
	}
}

// BenchmarkFig8StitchErrors regenerates Fig. 8: the count of stitch
// errors above the threshold per method. D&C/Multi-level should flag
// many crossings; Full-chip and Ours few.
func BenchmarkFig8StitchErrors(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig8(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		for m, name := range res.Methods {
			total := 0
			for _, row := range res.Counts {
				total += row[m]
			}
			clean := strings.ToLower(strings.ReplaceAll(name, "-", ""))
			b.ReportMetric(float64(total), clean+"-errors")
		}
	}
}

// BenchmarkParallelSpeedup regenerates the Section 4 parallelism
// experiment: multigrid-Schwarz TAT on 1..4 simulated devices (the
// paper reports 2.76× on 4 GPUs).
func BenchmarkParallelSpeedup(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunSpeedup(4, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		b.ReportMetric(res.Speedup[len(res.Speedup)-1], "speedup-4dev")
	}
}

// BenchmarkTileAssemblyPenalty regenerates the Section 2.3 motivation
// numbers: the L2 increase when a tile's mask is cropped from the
// divide-and-conquer assembly instead of optimised in isolation.
func BenchmarkTileAssemblyPenalty(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunPenalty(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		for j, s := range res.Solvers {
			clean := strings.ToLower(strings.ReplaceAll(s, "-", ""))
			b.ReportMetric(res.Increase[j], clean+"-penalty")
		}
	}
}

// BenchmarkAblation sweeps the multigrid-Schwarz design choices that
// DESIGN.md calls out (coarse grid, refine pass, staging, blending,
// hand-off cleanup).
func BenchmarkAblation(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunAblations(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		b.ReportMetric(res.Stitch[0], "ours-stitch")
		b.ReportMetric(res.L2[0], "ours-L2")
	}
}

// BenchmarkHotPathAllocs reports the steady-state heap allocations per
// serial LossGrad evaluation — the same measurement cmd/iltbench embeds
// in the trajectory document (lossgrad_allocs_per_op) and benchdiff
// gates. The frequency-domain engine's contract is 0: every spectrum,
// field buffer and FFT scratch in the hot path comes from a size-keyed
// pool once the pools are warm.
func BenchmarkHotPathAllocs(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		b.ReportMetric(env.MeasureLossGradAllocs(), "lossgrad-allocs/op")
	}
}

// BenchmarkMRCViolations quantifies the Section 2.3 manufacturability
// claim: stitch discontinuities create mask-rule violations (necks,
// notches, slivers) concentrated near tile boundaries. Ours should
// carry far fewer near-line violations than divide-and-conquer.
func BenchmarkMRCViolations(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := env.RunMRC(nil)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, res.Render())
		for m, name := range res.Methods {
			total := 0
			for _, row := range res.NearLine {
				total += row[m]
			}
			clean := strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(name, "-", ""), "(D&C)", "dc"))
			b.ReportMetric(float64(total), clean+"-nearline-violations")
		}
	}
}
